// Snapshot round-trip property suite (sim/snapshot.hpp, DESIGN.md §16).
//
// The contract under test: save at any cycle boundary, load into a fresh
// System, continue — and the resumed run is indistinguishable from the
// uninterrupted one. "Indistinguishable" is checked at the strongest level
// available: re-serializing both Systems at the end must produce
// byte-identical snapshot files (which covers every serialized field of
// every component, not just the stats), plus bit-exact stat sets.
//
// Plus the rejection paths: truncation anywhere in the file, a bumped
// format version, and a config digest mismatch must all fail loudly.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/state.hpp"
#include "common/stats.hpp"
#include "gtest/gtest.h"
#include "sim/presets.hpp"
#include "sim/snapshot.hpp"
#include "sim/system.hpp"

namespace rc {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void expect_stats_equal(const StatSet& a, const StatSet& b,
                        const std::string& what) {
  for (const auto& [k, v] : a.counters())
    EXPECT_EQ(v, b.counter_value(k)) << what << " counter " << k;
  for (const auto& [k, v] : b.counters())
    EXPECT_EQ(v, a.counter_value(k)) << what << " counter " << k;
}

SystemConfig combo_config(TopologyKind topo, Protocol proto,
                          std::uint64_t seed) {
  SystemConfig cfg = make_system_config(16, "SlackDelay1_NoAck", "fft", seed);
  cfg.noc.topology = topo;
  cfg.protocol = proto;
  cfg.warmup_cycles = 400;
  cfg.measure_cycles = 800;
  return cfg;
}

// One round-trip property case: run uninterrupted; run again, saving at a
// (seeded-random) mid-run cycle, reload into a fresh System, continue to
// the same end. Both final states must serialize to identical bytes.
void roundtrip_case(TopologyKind topo, Protocol proto, std::uint64_t seed,
                    const std::string& tag) {
  SCOPED_TRACE(tag);
  const SystemConfig cfg = combo_config(topo, proto, seed);
  const Cycle total = cfg.warmup_cycles + cfg.measure_cycles;
  std::mt19937_64 rng(seed * 1000003u + static_cast<int>(topo) * 31u +
                      static_cast<int>(proto));
  const Cycle save_at = 1 + rng() % (total - 1);

  const std::string mid = "snap_" + tag + "_mid.state";
  const std::string end_a = "snap_" + tag + "_a.state";
  const std::string end_b = "snap_" + tag + "_b.state";
  std::string err;

  // Uninterrupted reference run (manual drive: prewarm + straight cycles —
  // both sides skip reset_stats so the comparison covers warm-up activity
  // too).
  System full(cfg);
  full.prewarm();
  full.run_cycles(total);
  ASSERT_TRUE(save_snapshot(full, end_a, &err)) << err;

  // Interrupted run: save at the random cycle...
  System first(cfg);
  first.prewarm();
  first.run_cycles(save_at);
  ASSERT_TRUE(save_snapshot(first, mid, &err)) << err;

  // ...resume in a fresh System and continue to the same end.
  System resumed(cfg);
  ASSERT_EQ(load_snapshot(&resumed, mid, &err), SnapshotStatus::Ok) << err;
  EXPECT_EQ(resumed.now(), save_at);
  resumed.run_cycles(total - save_at);
  ASSERT_TRUE(save_snapshot(resumed, end_b, &err)) << err;

  EXPECT_EQ(read_file(end_a), read_file(end_b))
      << "resumed state diverged from the uninterrupted run (saved at cycle "
      << save_at << " of " << total << ")";
  EXPECT_EQ(full.total_retired(), resumed.total_retired());
  expect_stats_equal(full.network().merged_stats(),
                     resumed.network().merged_stats(), "net");
  expect_stats_equal(full.merged_sys_stats(), resumed.merged_sys_stats(),
                     "sys");

  std::remove(mid.c_str());
  std::remove(end_a.c_str());
  std::remove(end_b.c_str());
}

TEST(SnapshotRoundtrip, RandomMidRunSaveAcrossTopologiesAndProtocols) {
  const std::vector<std::pair<TopologyKind, const char*>> topos = {
      {TopologyKind::Mesh, "mesh"},
      {TopologyKind::Torus, "torus"},
      {TopologyKind::Ring, "ring"},
      {TopologyKind::CMesh, "cmesh"},
  };
  const std::vector<std::pair<Protocol, const char*>> protos = {
      {Protocol::FullMapMESI, "mesi"},
      {Protocol::SparseMSI, "msi"},
  };
  for (const auto& [topo, tname] : topos)
    for (const auto& [proto, pname] : protos)
      roundtrip_case(topo, proto, /*seed=*/7,
                     std::string(tname) + "_" + pname);
}

TEST(SnapshotRejection, TruncationAnywhereFailsTheChecksum) {
  const SystemConfig cfg = combo_config(TopologyKind::Mesh,
                                        Protocol::FullMapMESI, /*seed=*/5);
  System sys(cfg);
  sys.prewarm();
  sys.run_cycles(200);
  const std::string path = "snap_trunc.state";
  std::string err;
  ASSERT_TRUE(save_snapshot(sys, path, &err)) << err;
  const std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 64u);

  // Cuts at the front, inside the body, and one byte short of complete.
  for (std::size_t cut : {std::size_t{4}, std::size_t{20}, bytes.size() / 2,
                          bytes.size() - 1}) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    write_file("snap_cut.state", bytes.substr(0, cut));
    System fresh(cfg);
    err.clear();
    EXPECT_EQ(load_snapshot(&fresh, "snap_cut.state", &err),
              SnapshotStatus::Error);
    EXPECT_FALSE(err.empty());
  }
  // A flipped byte in the middle must fail too (checksum, not just length).
  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= 0x40;
  write_file("snap_cut.state", corrupt);
  System fresh(cfg);
  err.clear();
  EXPECT_EQ(load_snapshot(&fresh, "snap_cut.state", &err),
            SnapshotStatus::Error);
  EXPECT_NE(err.find("checksum"), std::string::npos) << err;
  std::remove(path.c_str());
  std::remove("snap_cut.state");
}

TEST(SnapshotRejection, FutureFormatVersionIsRefused) {
  const SystemConfig cfg = combo_config(TopologyKind::Mesh,
                                        Protocol::FullMapMESI, /*seed=*/5);
  System sys(cfg);
  sys.prewarm();
  sys.run_cycles(100);
  const std::string path = "snap_ver.state";
  std::string err;
  ASSERT_TRUE(save_snapshot(sys, path, &err)) << err;

  // Bump the u32 version right after the 8-byte magic, then recompute the
  // trailing checksum so the rejection is about the version, not corruption.
  std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 24u);
  bytes[8] = static_cast<char>(kSnapshotVersion + 1);
  bytes[9] = bytes[10] = bytes[11] = 0;
  const std::uint64_t sum =
      fnv1a(bytes.data(), bytes.size() - 8);
  for (int i = 0; i < 8; ++i)
    bytes[bytes.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<char>((sum >> (8 * i)) & 0xff);
  write_file(path, bytes);

  System fresh(cfg);
  err.clear();
  EXPECT_EQ(load_snapshot(&fresh, path, &err), SnapshotStatus::Error);
  EXPECT_NE(err.find("unsupported snapshot version"), std::string::npos)
      << err;
  std::remove(path.c_str());
}

TEST(SnapshotRejection, ConfigMismatchNamesTheFirstDifferingField) {
  const SystemConfig cfg = combo_config(TopologyKind::Mesh,
                                        Protocol::FullMapMESI, /*seed=*/5);
  System sys(cfg);
  sys.prewarm();
  sys.run_cycles(100);
  const std::string path = "snap_cfg.state";
  std::string err;
  ASSERT_TRUE(save_snapshot(sys, path, &err)) << err;

  SystemConfig other = cfg;
  other.seed = cfg.seed + 1;
  System fresh(other);
  err.clear();
  EXPECT_EQ(load_snapshot(&fresh, path, &err), SnapshotStatus::ConfigMismatch);
  EXPECT_NE(err.find("seed"), std::string::npos) << err;

  // Relaxed fields must NOT mismatch: a different measurement length loads.
  SystemConfig longer = cfg;
  longer.measure_cycles = cfg.measure_cycles * 2;
  System fresh2(longer);
  err.clear();
  EXPECT_EQ(load_snapshot(&fresh2, path, &err), SnapshotStatus::Ok) << err;
  std::remove(path.c_str());
}

TEST(SnapshotWarmKeys, GroupOnlyRelaxedKnobs) {
  // warm_group_hash must ignore exactly the relaxed digest fields: equal for
  // configs differing only in measure length / shards, different otherwise.
  const SystemConfig base = combo_config(TopologyKind::Mesh,
                                         Protocol::FullMapMESI, /*seed=*/5);
  SystemConfig relaxed = base;
  relaxed.measure_cycles *= 3;
  relaxed.shards = 4;
  EXPECT_EQ(warm_group_hash(base), warm_group_hash(relaxed));

  SystemConfig strict = base;
  strict.seed += 1;
  EXPECT_NE(warm_group_hash(base), warm_group_hash(strict));
  SystemConfig strict2 = base;
  strict2.warmup_cycles += 1;
  EXPECT_NE(warm_group_hash(base), warm_group_hash(strict2));
}

}  // namespace
}  // namespace rc
