// Partitioned-operation extension (§5.5): address homing, traffic
// isolation, and end-to-end behaviour.
#include <gtest/gtest.h>

#include <set>

#include "coherence/address_map.hpp"
#include "sim/experiment.hpp"
#include "sim/presets.hpp"
#include "sim/system.hpp"

namespace rc {
namespace {

TEST(PartitionMap, PartitionOfNodes) {
  Topology topo(8, 8);
  AddressMap amap(&topo, 4);
  EXPECT_TRUE(amap.partitioned());
  EXPECT_EQ(amap.num_partitions(), 4);
  EXPECT_EQ(amap.partition_of(0), 0);    // (0,0)
  EXPECT_EQ(amap.partition_of(7), 1);    // (7,0)
  EXPECT_EQ(amap.partition_of(32), 2);   // (0,4)
  EXPECT_EQ(amap.partition_of(63), 3);   // (7,7)
}

TEST(PartitionMap, PartitionNodesCoverChipExactlyOnce) {
  Topology topo(8, 8);
  AddressMap amap(&topo, 4);
  std::set<NodeId> all;
  for (int p = 0; p < amap.num_partitions(); ++p) {
    auto nodes = amap.partition_nodes(p);
    EXPECT_EQ(nodes.size(), 16u);
    for (NodeId n : nodes) {
      EXPECT_TRUE(all.insert(n).second) << "node " << n << " twice";
      EXPECT_EQ(amap.partition_of(n), p);
    }
  }
  EXPECT_EQ(all.size(), 64u);
}

TEST(PartitionMap, PrivateAddressesHomeInOwnersPartition) {
  Topology topo(8, 8);
  AddressMap amap(&topo, 4);
  for (NodeId core : {0, 9, 23, 40, 63}) {
    Addr a = kPrivateBase + static_cast<Addr>(core) * kPrivateStride +
             3 * kLineBytes;
    EXPECT_EQ(amap.partition_of_addr(a), amap.partition_of(core)) << core;
    EXPECT_EQ(amap.partition_of(amap.home_l2(a)), amap.partition_of(core))
        << core;
  }
}

TEST(PartitionMap, SharedSlicesHomeInTheirPartition) {
  Topology topo(8, 8);
  AddressMap amap(&topo, 4);
  for (int p = 0; p < 4; ++p) {
    for (int i = 0; i < 64; ++i) {
      Addr a = kSharedBase + static_cast<Addr>(p) * kPartitionSharedSpan +
               static_cast<Addr>(i) * kLineBytes;
      EXPECT_EQ(amap.partition_of_addr(a), p);
      EXPECT_EQ(amap.partition_of(amap.home_l2(a)), p);
    }
  }
}

TEST(PartitionMap, MonolithicIsUnchanged) {
  Topology topo(8, 8);
  AddressMap mono(&topo, 0);
  EXPECT_FALSE(mono.partitioned());
  EXPECT_EQ(mono.num_partitions(), 1);
  EXPECT_EQ(mono.home_l2(5 * kLineBytes), 5);
  EXPECT_EQ(mono.partition_nodes(0).size(), 64u);
}

RunResult run_partitioned(const std::string& preset, int pside) {
  SystemConfig cfg = make_system_config(64, preset, "fft", 3);
  cfg.partition_side = pside;
  cfg.warmup_cycles = 4'000;
  cfg.measure_cycles = 12'000;
  return run_config(cfg, preset);
}

TEST(Partitioned, RunsCleanlyAcrossVariants) {
  for (const char* preset :
       {"Baseline", "Complete_NoAck", "SlackDelay1_NoAck", "Fragmented"}) {
    RunResult r = run_partitioned(preset, 4);
    EXPECT_GT(r.retired, 10'000u) << preset;
  }
}

TEST(Partitioned, ShorterPathsThanMonolithic) {
  RunResult mono = run_partitioned("Baseline", 0);
  RunResult part = run_partitioned("Baseline", 4);
  const Accumulator* lm = mono.net.find_acc("lat_net_req");
  const Accumulator* lp = part.net.find_acc("lat_net_req");
  ASSERT_NE(lm, nullptr);
  ASSERT_NE(lp, nullptr);
  EXPECT_LT(lp->mean(), lm->mean());
}

TEST(Partitioned, CircuitsWorkBetterInsidePartitions) {
  RunResult mono = run_partitioned("Complete_NoAck", 0);
  RunResult part = run_partitioned("Complete_NoAck", 4);
  ReplyBreakdown bm = reply_breakdown(mono);
  ReplyBreakdown bp = reply_breakdown(part);
  // §5.5: isolation restores 16-core-like circuit behaviour.
  EXPECT_GT(bp.used, bm.used);
  EXPECT_LT(bp.failed, bm.failed);
}

}  // namespace
}  // namespace rc
