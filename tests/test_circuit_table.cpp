// CircuitTable unit tests: capacity, binding, slots, expiry, instance undo.
#include <gtest/gtest.h>

#include "circuits/circuit_table.hpp"
#include "common/rng.hpp"

namespace rc {
namespace {

CircuitEntry make_entry(NodeId dest, Addr addr, Port out = 1,
                        Cycle s = 0, Cycle e = kNeverCycle,
                        std::uint64_t owner = 7) {
  CircuitEntry ent;
  ent.src = 3;
  ent.dest = dest;
  ent.addr = addr;
  ent.out_port = out;
  ent.slot_start = s;
  ent.slot_end = e;
  ent.owner_req = owner;
  return ent;
}

TEST(CircuitTable, InsertAndFind) {
  CircuitTable t(2);
  EXPECT_TRUE(t.insert(make_entry(5, 0x100), 0));
  auto* e = t.find(5, 0x100, /*msg_id=*/11, /*bind_new=*/true, 0);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->bound_msg, 11u);
  EXPECT_EQ(t.live_count(0), 1);
}

TEST(CircuitTable, CapacityEnforced) {
  CircuitTable t(2);
  EXPECT_TRUE(t.insert(make_entry(1, 0x40), 0));
  EXPECT_TRUE(t.insert(make_entry(2, 0x80), 0));
  EXPECT_FALSE(t.insert(make_entry(3, 0xc0), 0));
  EXPECT_EQ(t.live_count(0), 2);
}

TEST(CircuitTable, UnboundedForIdeal) {
  CircuitTable t(-1);
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(t.insert(make_entry(i % 16, 0x40 * i), 0));
  EXPECT_EQ(t.live_count(0), 100);
}

TEST(CircuitTable, ExpiredSlotReclaimed) {
  CircuitTable t(1);
  EXPECT_TRUE(t.insert(make_entry(1, 0x40, 1, 10, 20), 0));
  EXPECT_FALSE(t.insert(make_entry(2, 0x80), 15));  // still live
  EXPECT_TRUE(t.insert(make_entry(2, 0x80), 21));   // expired, reclaimed
  EXPECT_EQ(t.find(1, 0x40, 9, true, 21), nullptr);
  EXPECT_NE(t.find(2, 0x80, 9, true, 21), nullptr);
}

TEST(CircuitTable, BodyFlitNeedsBinding) {
  CircuitTable t(2);
  t.insert(make_entry(5, 0x100), 0);
  // A non-head flit (bind_new=false) cannot match an unbound entry.
  EXPECT_EQ(t.find(5, 0x100, 42, /*bind_new=*/false, 0), nullptr);
  // The head binds it; body flits of the same message then match.
  EXPECT_NE(t.find(5, 0x100, 42, true, 0), nullptr);
  EXPECT_NE(t.find(5, 0x100, 42, false, 1), nullptr);
  // A different message cannot steal the bound entry.
  EXPECT_EQ(t.find(5, 0x100, 43, true, 1), nullptr);
}

TEST(CircuitTable, BindPrefersActiveSlot) {
  CircuitTable t(4);
  // Two instances of the same identity with disjoint slots (§4.7 duplicate
  // case). A head at t=15 must bind the active one, not the future one.
  auto later = make_entry(5, 0x100, 1, 30, 40, /*owner=*/200);
  auto active = make_entry(5, 0x100, 1, 10, 20, /*owner=*/100);
  t.insert(later, 0);
  t.insert(active, 0);
  auto* e = t.find(5, 0x100, 77, true, 15);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->owner_req, 100u);
}

TEST(CircuitTable, BindPrefersEarliestActive) {
  CircuitTable t(4);
  t.insert(make_entry(5, 0x100, 1, 12, kNeverCycle, 200), 0);
  t.insert(make_entry(5, 0x100, 1, 4, kNeverCycle, 100), 0);
  auto* e = t.find(5, 0x100, 77, true, 20);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->owner_req, 100u);  // earliest reservation rides first
}

TEST(CircuitTable, BoundEntryDoesNotExpire) {
  CircuitTable t(2);
  t.insert(make_entry(5, 0x100, 1, 10, 20), 0);
  auto* e = t.find(5, 0x100, 42, true, 20);
  ASSERT_NE(e, nullptr);
  // Past slot_end, the bound entry is still live (rider in flight)...
  EXPECT_NE(t.find(5, 0x100, 42, false, 25), nullptr);
  // ...until the tail releases it.
  auto freed = t.release(5, 0x100, 42, 25);
  ASSERT_TRUE(freed.has_value());
  EXPECT_EQ(t.find(5, 0x100, 42, false, 25), nullptr);
}

TEST(CircuitTable, ReleasePrefersBoundInstance) {
  CircuitTable t(4);
  t.insert(make_entry(5, 0x100, 1, 0, kNeverCycle, 100), 0);
  t.insert(make_entry(5, 0x100, 2, 0, kNeverCycle, 200), 0);
  auto* e = t.find(5, 0x100, 42, true, 0);
  ASSERT_NE(e, nullptr);
  auto freed = t.release(5, 0x100, 42, 1);
  ASSERT_TRUE(freed.has_value());
  EXPECT_EQ(freed->owner_req, e->owner_req);
  EXPECT_EQ(t.live_count(1), 1);
}

TEST(CircuitTable, ReleaseInstanceSkipsBound) {
  CircuitTable t(4);
  t.insert(make_entry(5, 0x100, 1, 0, kNeverCycle, 100), 0);
  t.find(5, 0x100, 42, true, 0);  // rider binds instance 100
  // An undo for instance 100 must not steal the ridden entry.
  EXPECT_FALSE(t.release_instance(5, 0x100, 100, 1).has_value());
  // After the rider released it, there is nothing left either.
  t.release(5, 0x100, 42, 2);
  EXPECT_FALSE(t.release_instance(5, 0x100, 100, 3).has_value());
}

TEST(CircuitTable, ReleaseInstanceMatchesOwner) {
  CircuitTable t(4);
  t.insert(make_entry(5, 0x100, 1, 0, kNeverCycle, 100), 0);
  t.insert(make_entry(5, 0x100, 2, 0, kNeverCycle, 200), 0);
  auto freed = t.release_instance(5, 0x100, 200, 1);
  ASSERT_TRUE(freed.has_value());
  EXPECT_EQ(freed->owner_req, 200u);
  EXPECT_EQ(t.live_count(1), 1);
}

TEST(CircuitTable, ConflictingOutputDetectsOverlap) {
  CircuitTable t(4);
  t.insert(make_entry(5, 0x100, /*out=*/2, 10, 20), 0);
  EXPECT_NE(t.conflicting_output(2, 15, 25, 0), nullptr);
  EXPECT_NE(t.conflicting_output(2, 5, 10, 0), nullptr);   // touch start
  EXPECT_NE(t.conflicting_output(2, 20, 30, 0), nullptr);  // touch end
  EXPECT_EQ(t.conflicting_output(2, 21, 30, 0), nullptr);  // disjoint after
  EXPECT_EQ(t.conflicting_output(2, 0, 9, 0), nullptr);    // disjoint before
  EXPECT_EQ(t.conflicting_output(3, 15, 25, 0), nullptr);  // other port
}

TEST(CircuitTable, ConflictingSlotIgnoresPort) {
  CircuitTable t(4);
  t.insert(make_entry(5, 0x100, 2, 10, 20), 0);
  EXPECT_NE(t.conflicting_slot(15, 16, 0), nullptr);
  EXPECT_EQ(t.conflicting_slot(30, 40, 0), nullptr);
}

TEST(CircuitTable, SameSourceRuleHelper) {
  CircuitTable t(4);
  auto e = make_entry(5, 0x100);
  e.src = 3;
  t.insert(e, 0);
  EXPECT_FALSE(t.has_other_source(3, 0));
  EXPECT_TRUE(t.has_other_source(4, 0));
}

TEST(CircuitTable, UntimedEntriesNeverExpire) {
  CircuitTable t(1);
  t.insert(make_entry(5, 0x100), 0);
  EXPECT_NE(t.find(5, 0x100, 1, true, 1'000'000), nullptr);
}

// An identity-keyed tear-down (msg_id == 0, the §4.4 undo path) must never
// take the entry a reply is currently riding; only that reply's own tail
// release (msg_id != 0) frees it.
TEST(CircuitTable, UndoReleaseNeverStealsBoundEntry) {
  CircuitTable t(2);
  ASSERT_TRUE(t.insert(make_entry(5, 0x100), 0));
  CircuitEntry* e = t.find(5, 0x100, /*msg_id=*/11, /*bind_new=*/true, 0);
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->bound_msg, 11u);
  EXPECT_FALSE(t.release(5, 0x100, /*msg_id=*/0, 0).has_value());
  auto rel = t.release(5, 0x100, /*msg_id=*/11, 0);
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(rel->bound_msg, 11u);
  EXPECT_EQ(t.live_count(0), 0);
}

// Property test: drive a bounded table through long random op sequences and
// check the §4.2/§4.4/§4.7 structural invariants after every step:
//  * live entries never exceed capacity, and neither does physical storage
//    (expired timed slots are reclaimed in place, not appended around);
//  * insert() fails exactly when the table is full of live entries;
//  * release(msg_id=0) and release_instance() never return a bound entry.
TEST(CircuitTable, PropertyRandomOpsRespectInvariants) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed * 977 + 1);
    const int cap = 1 + static_cast<int>(rng.next_below(5));
    CircuitTable t(cap);
    Cycle now = 0;
    std::uint64_t next_msg = 1;
    std::uint64_t next_owner = 1;
    // Small identity space so finds, releases and undos actually collide.
    auto rand_dest = [&] { return static_cast<NodeId>(rng.next_below(3)); };
    auto rand_addr = [&] {
      return static_cast<Addr>(0x40 * (1 + rng.next_below(3)));
    };
    for (int step = 0; step < 400; ++step) {
      now += rng.next_below(4);
      switch (rng.next_below(5)) {
        case 0: {  // insert (timed half the time)
          CircuitEntry e = make_entry(rand_dest(), rand_addr(),
                                      static_cast<Port>(rng.next_below(4)));
          if (rng.chance(0.5)) {
            e.slot_start = now + rng.next_below(8);
            e.slot_end = e.slot_start + 1 + rng.next_below(12);
          }
          e.owner_req = next_owner++;
          const bool was_full = !t.unbounded() && t.live_count(now) >= cap;
          EXPECT_EQ(t.insert(e, now), !was_full)
              << "insert must succeed iff a live slot is free (step " << step
              << ")";
          break;
        }
        case 1: {  // find / bind a head flit
          CircuitEntry* e = t.find(rand_dest(), rand_addr(), next_msg,
                                   rng.chance(0.7), now);
          if (e != nullptr) {
            EXPECT_TRUE(e->live(now));
            EXPECT_NE(e->bound_msg, 0u);
          }
          ++next_msg;
          break;
        }
        case 2: {  // tail release by a (possibly stale) message id
          t.release(rand_dest(), rand_addr(),
                    1 + rng.next_below(next_msg), now);
          break;
        }
        case 3: {  // identity tear-down: must never steal a bound entry
          auto freed = t.release(rand_dest(), rand_addr(), 0, now);
          if (freed.has_value()) {
            EXPECT_EQ(freed->bound_msg, 0u);
          }
          break;
        }
        case 4: {  // instance undo: riders survive, so never bound either
          auto freed = t.release_instance(rand_dest(), rand_addr(),
                                          1 + rng.next_below(next_owner), now);
          if (freed.has_value()) {
            EXPECT_EQ(freed->bound_msg, 0u);
          }
          break;
        }
      }
      ASSERT_LE(t.live_count(now), cap) << "step " << step;
      ASSERT_LE(static_cast<int>(t.entries().size()), cap) << "step " << step;
    }
  }
}

}  // namespace
}  // namespace rc
