// CircuitTable unit tests: capacity, binding, slots, expiry, instance undo.
#include <gtest/gtest.h>

#include "circuits/circuit_table.hpp"

namespace rc {
namespace {

CircuitEntry make_entry(NodeId dest, Addr addr, Port out = 1,
                        Cycle s = 0, Cycle e = kNeverCycle,
                        std::uint64_t owner = 7) {
  CircuitEntry ent;
  ent.src = 3;
  ent.dest = dest;
  ent.addr = addr;
  ent.out_port = out;
  ent.slot_start = s;
  ent.slot_end = e;
  ent.owner_req = owner;
  return ent;
}

TEST(CircuitTable, InsertAndFind) {
  CircuitTable t(2);
  EXPECT_TRUE(t.insert(make_entry(5, 0x100), 0));
  auto* e = t.find(5, 0x100, /*msg_id=*/11, /*bind_new=*/true, 0);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->bound_msg, 11u);
  EXPECT_EQ(t.live_count(0), 1);
}

TEST(CircuitTable, CapacityEnforced) {
  CircuitTable t(2);
  EXPECT_TRUE(t.insert(make_entry(1, 0x40), 0));
  EXPECT_TRUE(t.insert(make_entry(2, 0x80), 0));
  EXPECT_FALSE(t.insert(make_entry(3, 0xc0), 0));
  EXPECT_EQ(t.live_count(0), 2);
}

TEST(CircuitTable, UnboundedForIdeal) {
  CircuitTable t(-1);
  for (int i = 0; i < 100; ++i)
    EXPECT_TRUE(t.insert(make_entry(i % 16, 0x40 * i), 0));
  EXPECT_EQ(t.live_count(0), 100);
}

TEST(CircuitTable, ExpiredSlotReclaimed) {
  CircuitTable t(1);
  EXPECT_TRUE(t.insert(make_entry(1, 0x40, 1, 10, 20), 0));
  EXPECT_FALSE(t.insert(make_entry(2, 0x80), 15));  // still live
  EXPECT_TRUE(t.insert(make_entry(2, 0x80), 21));   // expired, reclaimed
  EXPECT_EQ(t.find(1, 0x40, 9, true, 21), nullptr);
  EXPECT_NE(t.find(2, 0x80, 9, true, 21), nullptr);
}

TEST(CircuitTable, BodyFlitNeedsBinding) {
  CircuitTable t(2);
  t.insert(make_entry(5, 0x100), 0);
  // A non-head flit (bind_new=false) cannot match an unbound entry.
  EXPECT_EQ(t.find(5, 0x100, 42, /*bind_new=*/false, 0), nullptr);
  // The head binds it; body flits of the same message then match.
  EXPECT_NE(t.find(5, 0x100, 42, true, 0), nullptr);
  EXPECT_NE(t.find(5, 0x100, 42, false, 1), nullptr);
  // A different message cannot steal the bound entry.
  EXPECT_EQ(t.find(5, 0x100, 43, true, 1), nullptr);
}

TEST(CircuitTable, BindPrefersActiveSlot) {
  CircuitTable t(4);
  // Two instances of the same identity with disjoint slots (§4.7 duplicate
  // case). A head at t=15 must bind the active one, not the future one.
  auto later = make_entry(5, 0x100, 1, 30, 40, /*owner=*/200);
  auto active = make_entry(5, 0x100, 1, 10, 20, /*owner=*/100);
  t.insert(later, 0);
  t.insert(active, 0);
  auto* e = t.find(5, 0x100, 77, true, 15);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->owner_req, 100u);
}

TEST(CircuitTable, BindPrefersEarliestActive) {
  CircuitTable t(4);
  t.insert(make_entry(5, 0x100, 1, 12, kNeverCycle, 200), 0);
  t.insert(make_entry(5, 0x100, 1, 4, kNeverCycle, 100), 0);
  auto* e = t.find(5, 0x100, 77, true, 20);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->owner_req, 100u);  // earliest reservation rides first
}

TEST(CircuitTable, BoundEntryDoesNotExpire) {
  CircuitTable t(2);
  t.insert(make_entry(5, 0x100, 1, 10, 20), 0);
  auto* e = t.find(5, 0x100, 42, true, 20);
  ASSERT_NE(e, nullptr);
  // Past slot_end, the bound entry is still live (rider in flight)...
  EXPECT_NE(t.find(5, 0x100, 42, false, 25), nullptr);
  // ...until the tail releases it.
  auto freed = t.release(5, 0x100, 42, 25);
  ASSERT_TRUE(freed.has_value());
  EXPECT_EQ(t.find(5, 0x100, 42, false, 25), nullptr);
}

TEST(CircuitTable, ReleasePrefersBoundInstance) {
  CircuitTable t(4);
  t.insert(make_entry(5, 0x100, 1, 0, kNeverCycle, 100), 0);
  t.insert(make_entry(5, 0x100, 2, 0, kNeverCycle, 200), 0);
  auto* e = t.find(5, 0x100, 42, true, 0);
  ASSERT_NE(e, nullptr);
  auto freed = t.release(5, 0x100, 42, 1);
  ASSERT_TRUE(freed.has_value());
  EXPECT_EQ(freed->owner_req, e->owner_req);
  EXPECT_EQ(t.live_count(1), 1);
}

TEST(CircuitTable, ReleaseInstanceSkipsBound) {
  CircuitTable t(4);
  t.insert(make_entry(5, 0x100, 1, 0, kNeverCycle, 100), 0);
  t.find(5, 0x100, 42, true, 0);  // rider binds instance 100
  // An undo for instance 100 must not steal the ridden entry.
  EXPECT_FALSE(t.release_instance(5, 0x100, 100, 1).has_value());
  // After the rider released it, there is nothing left either.
  t.release(5, 0x100, 42, 2);
  EXPECT_FALSE(t.release_instance(5, 0x100, 100, 3).has_value());
}

TEST(CircuitTable, ReleaseInstanceMatchesOwner) {
  CircuitTable t(4);
  t.insert(make_entry(5, 0x100, 1, 0, kNeverCycle, 100), 0);
  t.insert(make_entry(5, 0x100, 2, 0, kNeverCycle, 200), 0);
  auto freed = t.release_instance(5, 0x100, 200, 1);
  ASSERT_TRUE(freed.has_value());
  EXPECT_EQ(freed->owner_req, 200u);
  EXPECT_EQ(t.live_count(1), 1);
}

TEST(CircuitTable, ConflictingOutputDetectsOverlap) {
  CircuitTable t(4);
  t.insert(make_entry(5, 0x100, /*out=*/2, 10, 20), 0);
  EXPECT_NE(t.conflicting_output(2, 15, 25, 0), nullptr);
  EXPECT_NE(t.conflicting_output(2, 5, 10, 0), nullptr);   // touch start
  EXPECT_NE(t.conflicting_output(2, 20, 30, 0), nullptr);  // touch end
  EXPECT_EQ(t.conflicting_output(2, 21, 30, 0), nullptr);  // disjoint after
  EXPECT_EQ(t.conflicting_output(2, 0, 9, 0), nullptr);    // disjoint before
  EXPECT_EQ(t.conflicting_output(3, 15, 25, 0), nullptr);  // other port
}

TEST(CircuitTable, ConflictingSlotIgnoresPort) {
  CircuitTable t(4);
  t.insert(make_entry(5, 0x100, 2, 10, 20), 0);
  EXPECT_NE(t.conflicting_slot(15, 16, 0), nullptr);
  EXPECT_EQ(t.conflicting_slot(30, 40, 0), nullptr);
}

TEST(CircuitTable, SameSourceRuleHelper) {
  CircuitTable t(4);
  auto e = make_entry(5, 0x100);
  e.src = 3;
  t.insert(e, 0);
  EXPECT_FALSE(t.has_other_source(3, 0));
  EXPECT_TRUE(t.has_other_source(4, 0));
}

TEST(CircuitTable, UntimedEntriesNeverExpire) {
  CircuitTable t(1);
  t.insert(make_entry(5, 0x100), 0);
  EXPECT_NE(t.find(5, 0x100, 1, true, 1'000'000), nullptr);
}

}  // namespace
}  // namespace rc
