// Unit tests for the common module: pipes, RNG, stats, config helpers.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "common/pipe.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace rc {
namespace {

TEST(Pipe, DeliversAfterLatency) {
  Pipe<int> p(2);
  p.push(42, 10);
  EXPECT_EQ(p.pop_ready(10), std::nullopt);
  EXPECT_EQ(p.pop_ready(11), std::nullopt);
  auto v = p.pop_ready(12);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(p.empty());
}

TEST(Pipe, PreservesFifoOrder) {
  Pipe<int> p(1);
  p.push(1, 0);
  p.push(2, 0);
  p.push(3, 1);
  EXPECT_EQ(*p.pop_ready(1), 1);
  EXPECT_EQ(*p.pop_ready(1), 2);
  EXPECT_EQ(p.pop_ready(1), std::nullopt);  // third is ready at 2
  EXPECT_EQ(*p.pop_ready(2), 3);
}

TEST(Pipe, FrontReadyPeeksWithoutConsuming) {
  Pipe<int> p(1);
  p.push(7, 0);
  EXPECT_EQ(p.front_ready(0), nullptr);
  ASSERT_NE(p.front_ready(1), nullptr);
  EXPECT_EQ(*p.front_ready(1), 7);
  EXPECT_EQ(p.size(), 1u);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkIndependentStreams) {
  Rng a(7);
  Rng c1 = a.fork(1), c2 = a.fork(2);
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(Rng, NextBelowInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng r(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Accumulator, MeanMinMax) {
  Accumulator a;
  a.add(1);
  a.add(3);
  a.add(5);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_NEAR(a.stddev(), 2.0, 1e-9);
}

TEST(Accumulator, MergeMatchesCombinedStream) {
  Accumulator a, b, all;
  for (int i = 0; i < 10; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 10; i < 25; ++i) {
    b.add(i * 1.5);
    all.add(i * 1.5);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Accumulator, VarianceStableAtLargeMean) {
  // Regression: the old sum-of-squares form (sum2 - n*m*m) cancels
  // catastrophically when samples cluster far from zero — at mean ~1e9 with
  // unit spread it returned garbage (often 0 or wildly wrong). The shifted
  // second moment keeps full precision.
  Accumulator a;
  const double base = 1e9;
  for (int i = 0; i < 7; ++i) a.add(base + i);  // 1e9 + {0..6}
  // True sample variance of {0..6} is 28/6.
  EXPECT_NEAR(a.variance(), 28.0 / 6.0, 1e-6);
  EXPECT_NEAR(a.mean(), base + 3.0, 1e-3);
}

TEST(Accumulator, MergeStableAtLargeMean) {
  // merge() rebases the other side's shifted moments; that rebase must not
  // reintroduce the cancellation the shift exists to avoid.
  Accumulator a, b, all;
  const double base = 1e9;
  for (int i = 0; i < 4; ++i) {
    a.add(base + i);
    all.add(base + i);
  }
  for (int i = 4; i < 7; ++i) {
    b.add(base + i);
    all.add(base + i);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.variance(), 28.0 / 6.0, 1e-6);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(Accumulator, MergeIsDeterministic) {
  // The sharded engine relies on fixed-order merges being bit-identical:
  // the same per-part accumulators merged in the same order must compare
  // equal with the default (bitwise) operator==.
  auto build = [] {
    Accumulator parts[3], merged;
    for (int p = 0; p < 3; ++p)
      for (int i = 0; i < 5; ++i) parts[p].add(1e6 + p * 100 + i * 3);
    for (int p = 0; p < 3; ++p) merged.merge(parts[p]);
    return merged;
  };
  EXPECT_TRUE(build() == build());
}

TEST(Accumulator, MergeEmptySides) {
  Accumulator empty, a;
  a.add(2.0);
  a.add(4.0);
  Accumulator m1 = empty;
  m1.merge(a);  // empty.merge(filled) adopts the other side wholesale
  EXPECT_TRUE(m1 == a);
  Accumulator m2 = a;
  m2.merge(empty);  // filled.merge(empty) is a no-op
  EXPECT_TRUE(m2 == a);
}

TEST(Histogram, PercentileZeroFractionIsZero) {
  // Regression: `seen >= target` fired immediately at target=0, so
  // percentile(0.0) answered with bucket 0's upper edge (1.0) even when
  // bucket 0 was empty.
  Histogram h;
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);  // empty histogram
  h.add(100.0);                              // lands far above bucket 0
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(-0.5), 0.0);
}

TEST(Histogram, PercentileSkipsEmptyLeadingBuckets) {
  // All mass in the [64,128) bucket: every positive fraction must answer
  // with that bucket's upper edge, never an empty leading bucket's.
  Histogram h;
  for (int i = 0; i < 10; ++i) h.add(100.0);
  EXPECT_DOUBLE_EQ(h.percentile(1e-9), 128.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 128.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 128.0);
}

TEST(Histogram, PercentileTopFractionIsTopOccupiedBucket) {
  Histogram h;
  h.add(0.5);    // bucket 0 (edge 1)
  h.add(100.0);  // [64,128) bucket (edge 128)
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 128.0);
  EXPECT_DOUBLE_EQ(h.percentile(2.0), 128.0);  // clamped, not the table edge
}

TEST(StatSet, CountersAndReset) {
  StatSet s;
  s.counter("x") += 5;
  EXPECT_EQ(s.counter_value("x"), 5u);
  EXPECT_EQ(s.counter_value("missing"), 0u);
  s.reset();
  EXPECT_EQ(s.counter_value("x"), 0u);
}

TEST(StatSet, Merge) {
  StatSet a, b;
  a.counter("x") = 1;
  b.counter("x") = 2;
  b.counter("y") = 3;
  b.acc("l").add(4.0);
  a.merge(b);
  EXPECT_EQ(a.counter_value("x"), 3u);
  EXPECT_EQ(a.counter_value("y"), 3u);
  EXPECT_EQ(a.acc("l").count(), 1u);
}

TEST(Config, HopCycleArithmetic) {
  NocConfig n;
  EXPECT_EQ(n.packet_hop_cycles(), 5);   // Table 4 + §4.7
  EXPECT_EQ(n.circuit_hop_cycles(), 2);  // §4.3
}

TEST(Config, CircuitVcCounts) {
  CircuitConfig c;
  EXPECT_EQ(c.num_circuit_vcs(), 0);
  c.mode = CircuitMode::Fragmented;
  EXPECT_EQ(c.num_circuit_vcs(), 2);
  c.mode = CircuitMode::Complete;
  EXPECT_EQ(c.num_circuit_vcs(), 1);
  EXPECT_TRUE(c.bufferless_circuit_vc());
  c.mode = CircuitMode::Ideal;
  EXPECT_FALSE(c.bufferless_circuit_vc());
}

TEST(Types, OppositeDirections) {
  EXPECT_EQ(opposite(Dir::North), Dir::South);
  EXPECT_EQ(opposite(Dir::East), Dir::West);
  EXPECT_EQ(opposite(Dir::West), Dir::East);
  EXPECT_EQ(opposite(Dir::South), Dir::North);
  EXPECT_EQ(opposite(Dir::Local), Dir::Local);
}

TEST(Types, LineAddrMasksOffset) {
  EXPECT_EQ(line_addr(0x1234), 0x1200u + 0x00u);
  EXPECT_EQ(line_addr(0x1240), 0x1240u);
  EXPECT_EQ(line_addr(0x127f), 0x1240u);
}

}  // namespace
}  // namespace rc
