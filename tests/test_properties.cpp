// Property-style sweeps over configurations and seeds: global invariants
// that must hold for every Reactive Circuits variant.
#include <gtest/gtest.h>

#include <tuple>

#include "sim/experiment.hpp"
#include "sim/presets.hpp"

namespace rc {
namespace {

struct Case {
  std::string preset;
  std::string app;
  std::uint64_t seed;
};

std::vector<Case> sweep_cases() {
  std::vector<Case> v;
  for (const auto& p : preset_names_small())
    for (std::uint64_t seed : {11ull, 23ull})
      v.push_back({p, "fft", seed});
  for (const auto& app : {"canneal", "mix", "blackscholes", "barnes"})
    v.push_back({"SlackDelay1_NoAck", app, 5ull});
  return v;
}

class VariantSweep : public ::testing::TestWithParam<Case> {};

TEST_P(VariantSweep, InvariantsHold) {
  const Case& c = GetParam();
  RunResult r = run_one(16, c.preset, c.app, c.seed, 5'000, 15'000);
  auto n = [&](const char* k) { return r.net.counter_value(k); };

  // 1. Work happened.
  EXPECT_GT(r.retired, 1'000u);
  EXPECT_GT(n("msg_GetS") + n("msg_GetX"), 0u);

  // 2. Flit conservation: every injected flit is eventually ejected
  //    (modulo those still in flight at the measurement edge).
  double injected = static_cast<double>(n("ni_inject_flit"));
  double buffered = static_cast<double>(n("buf_write"));
  EXPECT_GT(injected, 0.0);
  EXPECT_GE(buffered + n("circ_fwd"), injected * 0.9);

  // 3. Reply accounting covers all replies.
  ReplyBreakdown b = reply_breakdown(r);
  double covered = b.used + b.failed + b.undone + b.scrounged +
                   b.not_eligible + b.eliminated + b.other;
  EXPECT_NEAR(covered, 1.0, 1e-9);

  // 4. Mechanism sanity per mode.
  const CircuitConfig& cc = r.noc.circuit;
  if (!cc.uses_circuits()) {
    EXPECT_EQ(n("circ_reservations"), 0u);
    EXPECT_EQ(b.used, 0.0);
  } else {
    EXPECT_GT(n("circ_reservations"), 0u);
    EXPECT_GT(b.used, 0.0);
  }
  if (!cc.no_ack) {
    EXPECT_EQ(b.eliminated, 0.0);
  }
  if (!cc.reuse) {
    EXPECT_EQ(b.scrounged, 0.0);
  }
  if (cc.mode == CircuitMode::Ideal) {
    EXPECT_EQ(b.failed, 0.0);
  }

  // 5. Latency sanity: requests cost at least the uncontended pipeline.
  const Accumulator* req = r.net.find_acc("lat_net_req");
  ASSERT_NE(req, nullptr);
  EXPECT_GE(req->min(), 12.0);   // 1-hop minimum: 7 + 5
  EXPECT_LT(req->mean(), 200.0);

  // 6. Energy accounting is positive and finite.
  EXPECT_GT(r.energy_per_instr, 0.0);
  EXPECT_LT(r.energy_per_instr, 1e9);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, VariantSweep, ::testing::ValuesIn(sweep_cases()),
    [](const ::testing::TestParamInfo<Case>& i) {
      return i.param.preset + "_" + i.param.app + "_s" +
             std::to_string(i.param.seed);
    });

TEST(Determinism, EveryVariantIsReproducible) {
  for (const auto& p : preset_names_small()) {
    RunResult a = run_one(16, p, "fluidanimate", 3, 3'000, 8'000);
    RunResult b = run_one(16, p, "fluidanimate", 3, 3'000, 8'000);
    EXPECT_EQ(a.retired, b.retired) << p;
    EXPECT_EQ(a.net.counter_value("ni_inject_flit"),
              b.net.counter_value("ni_inject_flit"))
        << p;
    EXPECT_EQ(a.net.counter_value("circ_reservations"),
              b.net.counter_value("circ_reservations"))
        << p;
  }
}

TEST(Shapes, CircuitsReduceEligibleReplyLatency) {
  RunResult base = run_one(16, "Baseline", "fft", 3, 5'000, 15'000);
  RunResult comp = run_one(16, "Complete_NoAck", "fft", 3, 5'000, 15'000);
  const auto* lb = base.net.find_acc("lat_net_rep_circ");
  const auto* lc = comp.net.find_acc("lat_net_rep_circ");
  ASSERT_NE(lb, nullptr);
  ASSERT_NE(lc, nullptr);
  EXPECT_LT(lc->mean(), lb->mean());
}

TEST(Shapes, NoAckImprovesOnPlainComplete) {
  RunResult comp = run_one(16, "Complete", "fft", 3, 5'000, 15'000);
  RunResult noack = run_one(16, "Complete_NoAck", "fft", 3, 5'000, 15'000);
  // Fewer messages traverse the network for the same work rate.
  double per_instr_c =
      double(comp.net.counter_value("ni_inject_flit")) / comp.retired;
  double per_instr_n =
      double(noack.net.counter_value("ni_inject_flit")) / noack.retired;
  EXPECT_LT(per_instr_n, per_instr_c);
}

TEST(Shapes, IdealIsTheUpperBound) {
  RunResult base = run_one(16, "Baseline", "fft", 3, 5'000, 15'000);
  RunResult best = run_one(16, "SlackDelay1_NoAck", "fft", 3, 5'000, 15'000);
  RunResult ideal = run_one(16, "Ideal", "fft", 3, 5'000, 15'000);
  EXPECT_GT(ideal.ipc, base.ipc);
  EXPECT_GE(ideal.ipc * 1.02, best.ipc);  // ideal at or above, small noise
}

TEST(Shapes, SixtyFourCoreRunsAllVariants) {
  for (const auto& p : preset_names_small()) {
    RunResult r = run_one(64, p, "fft", 3, 2'000, 6'000);
    EXPECT_GT(r.retired, 4'000u) << p;
  }
}

}  // namespace
}  // namespace rc
