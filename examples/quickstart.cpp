// Quickstart: simulate a 64-core CMP twice — conventional wormhole NoC vs.
// Reactive Circuits (timed, slack+delay 1 cycle/hop, ACK elimination) — and
// print what the mechanism changed.
//
//   $ ./example_quickstart [app] [cores]
//
// Apps are the paper's workload models (blackscholes .. water_spatial, mix).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/experiment.hpp"
#include "sim/presets.hpp"
#include "sim/report.hpp"

using namespace rc;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "fft";
  const int cores = argc > 2 ? std::atoi(argv[2]) : 64;

  std::printf("Reactive Circuits quickstart: %d-core mesh, workload '%s'\n\n",
              cores, app.c_str());

  RunResult base = run_one(cores, "Baseline", app, 1, 10'000, 30'000);
  RunResult rc = run_one(cores, "SlackDelay1_NoAck", app, 1, 10'000, 30'000);

  ReplyBreakdown b = reply_breakdown(rc);
  Table t({"metric", "baseline", "reactive circuits"});
  auto acc = [](const RunResult& r, const char* k) {
    const Accumulator* a = r.net.find_acc(k);
    return a && a->count() ? a->mean() : 0.0;
  };
  t.add_row({"IPC (per core)", Table::num(base.ipc, 4),
             Table::num(rc.ipc, 4)});
  t.add_row({"eligible-reply network latency (cycles)",
             Table::num(acc(base, "lat_net_rep_circ"), 1),
             Table::num(acc(rc, "lat_net_rep_circ"), 1)});
  t.add_row({"request network latency (cycles)",
             Table::num(acc(base, "lat_net_req"), 1),
             Table::num(acc(rc, "lat_net_req"), 1)});
  t.add_row({"network energy / instruction (norm.)", "1.000",
             Table::num(rc.energy_per_instr / base.energy_per_instr, 3)});
  t.print("baseline vs. SlackDelay1_NoAck");

  Table u({"reply fate", "fraction"});
  u.add_row({"rode a circuit", Table::pct(b.used)});
  u.add_row({"reservation failed", Table::pct(b.failed)});
  u.add_row({"circuit undone before use", Table::pct(b.undone)});
  u.add_row({"ACK eliminated entirely", Table::pct(b.eliminated)});
  u.add_row({"not eligible", Table::pct(b.not_eligible)});
  u.print("what happened to the replies");

  std::printf("\nSpeedup: %.1f%%   Energy saving: %.1f%%\n",
              100.0 * (rc.ipc / base.ipc - 1.0),
              100.0 * (1.0 - rc.energy_per_instr / base.energy_per_instr));
  return 0;
}
