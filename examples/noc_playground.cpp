// NoC playground: drive the network fabric directly (no caches, no cores)
// and watch a reactive circuit being reserved, used, and torn down.
//
// Demonstrates the raw public API: Network, Message, circuit tables.
#include <cstdio>
#include <memory>
#include <vector>

#include "noc/network.hpp"
#include "sim/presets.hpp"

using namespace rc;

namespace {

struct Playground {
  explicit Playground(const NocConfig& cfg) : net(cfg) {
    net.set_deliver([this](NodeId n, const MsgPtr& m) {
      std::printf("  @%4llu  node %2d received %-10s addr=%llx%s\n",
                  static_cast<unsigned long long>(clock), n,
                  to_string(m->type),
                  static_cast<unsigned long long>(m->addr),
                  m->on_circuit ? "  [rode its circuit]" : "");
      arrived++;
    });
  }
  MsgPtr make(MsgType t, NodeId src, NodeId dest, Addr addr, int flits) {
    auto m = std::make_shared<Message>();
    m->id = ++next_id;
    m->type = t;
    m->src = src;
    m->dest = dest;
    m->addr = addr;
    m->size_flits = flits;
    return m;
  }
  void run_until(int count, int max = 500) {
    while (arrived < count && max-- > 0) net.tick(clock++);
  }
  Network net;
  Cycle clock = 0;
  std::uint64_t next_id = 0;
  int arrived = 0;
};

void show_tables(Playground& p, NodeId from, NodeId to) {
  const auto& topo = p.net.topo();
  NodeId cur = from;
  while (true) {
    int live = 0;
    Router& r = p.net.router(cur);
    for (int port = 0; port < kNumDirs; ++port)
      for (const auto& e : r.circuits().table(port).entries())
        if (e.valid) ++live;
    std::printf("  router %2d: %d live circuit entr%s\n", cur, live,
                live == 1 ? "y" : "ies");
    if (cur == to) break;
    cur = topo.neighbour(
        cur, route_dor(topo.coord_of(cur), topo.coord_of(to), false));
  }
}

}  // namespace

int main() {
  NocConfig cfg = make_system_config(16, "Complete", "fft").noc;
  Playground p(cfg);

  std::printf("1) A request from node 0 to node 3 reserves the reply circuit"
              " as it travels (5 cycles/hop):\n");
  auto req = p.make(MsgType::GetS, 0, 3, 0x1000, 1);
  p.net.send(req, p.clock);
  p.run_until(1);
  std::printf("   request latency: %llu cycles; circuit fully built: %s\n",
              static_cast<unsigned long long>(req->delivered - req->injected),
              req->circuit_ok ? "yes" : "no");
  show_tables(p, 0, 3);

  std::printf("\n2) The data reply rides the circuit at 2 cycles/hop,"
              " bypassing routing and arbitration:\n");
  auto rep = p.make(MsgType::L2Reply, 3, 0, 0x1000, 5);
  p.net.send(rep, p.clock);
  p.run_until(2);
  std::printf("   reply network latency: %llu cycles (5-flit data message)\n",
              static_cast<unsigned long long>(rep->delivered - rep->injected));

  std::printf("\n3) Its tail flit cleared the reservations behind it:\n");
  show_tables(p, 0, 3);

  std::printf("\n4) An identical reply without a circuit takes the full"
              " 4-stage pipeline at every router:\n");
  auto rep2 = p.make(MsgType::L2Reply, 3, 0, 0x2000, 5);
  p.net.send(rep2, p.clock);
  p.run_until(3);
  std::printf("   packet-switched latency: %llu cycles\n",
              static_cast<unsigned long long>(rep2->delivered -
                                              rep2->injected));

  std::printf("\n5) The forward-to-owner coherence case tears a circuit down"
              " through the credit wires (§4.4):\n");
  auto req2 = p.make(MsgType::GetS, 0, 3, 0x3000, 1);
  p.net.send(req2, p.clock);
  p.run_until(4);
  p.net.ni(3).undo_circuit(0, 0x3000, p.clock, false);
  for (int i = 0; i < 30; ++i) p.net.tick(p.clock++);
  std::printf("   after the undo credits crawled home:\n");
  show_tables(p, 0, 3);
  return 0;
}
