// Coherence trace: drive a core-less CMP through the flows of the paper's
// Table 3 and print every message that crosses the network — a readable
// transcript of the MESI directory protocol the NoC carries.
#include <cstdio>
#include <memory>

#include "sim/presets.hpp"
#include "sim/system.hpp"

using namespace rc;

namespace {

struct Tracer {
  explicit Tracer(const std::string& preset) {
    SystemConfig cfg = make_system_config(16, preset, "fft");
    cfg.workload = "none";
    sys = std::make_unique<System>(cfg);
    sys->set_message_observer([this](NodeId n, const MsgPtr& m) {
      std::printf("    @%5llu  %2d -> %-2d  %-10s addr=%llx%s%s\n",
                  static_cast<unsigned long long>(sys->now()), m->src, n,
                  to_string(m->type),
                  static_cast<unsigned long long>(m->addr),
                  m->on_circuit ? "  [circuit]" : "",
                  m->ack_elided ? "  [ack elided]" : "");
    });
  }

  void access(NodeId n, Addr a, bool write, const char* what) {
    std::printf("\n== node %d %s line %llx: %s\n", n,
                write ? "writes" : "reads",
                static_cast<unsigned long long>(a), what);
    bool done = false;
    sys->l1(n).set_complete([&](Cycle) { done = true; });
    sys->l1(n).access(a, write, sys->now());
    int guard = 4000;
    while (!done && guard-- > 0) sys->run_cycles(1);
    sys->run_cycles(120);  // drain trailing ACKs for a tidy transcript
  }

  std::unique_ptr<System> sys;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string preset = argc > 1 ? argv[1] : "Complete_NoAck";
  std::printf("MESI transcript under the '%s' NoC (Table 3 flows)\n",
              preset.c_str());
  Tracer t(preset);

  const Addr a = 5 * kLineBytes;  // homed at L2 bank 5
  t.access(0, a, false,
           "L1 miss -> GetS to home bank 5, L2 miss -> memory, data reply"
           " (+ DATA_ACK unless elided)");
  t.access(0, a, true, "silent E->M upgrade: no traffic at all");
  t.access(1, a, false,
           "another L1 misses; the owner supplies the data directly"
           " (L2 forwards, L1_TO_L1), the requestor ACKs the home bank");
  t.access(2, a, true,
           "write: the home bank invalidates both sharers, collects"
           " L1_INV_ACKs, then sends the exclusive data");
  t.access(2, 100 * kLineBytes, false,
           "unrelated read (cold miss straight to memory)");
  std::printf("\n(done — swap the preset: %s [Baseline|Complete|"
              "Complete_NoAck|SlackDelay1_NoAck|Ideal])\n",
              argv[0]);
  return 0;
}
