// Pipeline view: single-step the NoC and print, cycle by cycle, where a
// request and its circuit-riding reply are — making the paper's "five
// cycles per hop vs two cycles per hop" visible flit by flit.
#include <cstdio>
#include <memory>
#include <string>

#include "noc/network.hpp"
#include "sim/presets.hpp"

using namespace rc;

namespace {

const char* vc_state_name(VCState s) {
  switch (s) {
    case VCState::Idle: return "-";
    case VCState::WaitVA: return "VA";
    case VCState::Active: return "SA";
  }
  return "?";
}

// Print one line per router on the row-0 path 0->3: the state of the input
// VC holding our packet plus the circuit entry count.
void snapshot(Network& net, Cycle now, const char* tag) {
  std::printf("@%3llu %-8s", static_cast<unsigned long long>(now), tag);
  for (NodeId n = 0; n <= 3; ++n) {
    Router& r = net.router(n);
    // Find any occupied input VC.
    const char* st = "-";
    std::size_t buffered = 0;
    for (int d = 0; d < kNumDirs; ++d) {
      for (int vn = 0; vn < 2; ++vn) {
        for (int vc = 0; vc < 2; ++vc) {
          const InputVC& ivc =
              r.input_vc(static_cast<Dir>(d), static_cast<VNet>(vn), vc);
          if (ivc.state != VCState::Idle || !ivc.buf.empty()) {
            st = vc_state_name(ivc.state);
            buffered += ivc.buf.size();
          }
        }
      }
    }
    int circuits = 0;
    for (int p = 0; p < kNumDirs; ++p)
      for (const auto& e : r.circuits().table(p).entries())
        if (e.valid) ++circuits;
    std::printf(" | r%d:%-2s buf=%zu circ=%d", n, st, buffered, circuits);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  NocConfig cfg = make_system_config(16, "Complete", "fft").noc;
  Network net(cfg);
  int delivered = 0;
  net.set_deliver([&](NodeId n, const MsgPtr& m) {
    std::printf("            >>> node %d received %s\n", n,
                to_string(m->type));
    ++delivered;
  });

  Cycle clock = 0;
  auto make = [&](MsgType t, NodeId s, NodeId d, Addr a, int f) {
    auto m = std::make_shared<Message>();
    static std::uint64_t id = 0;
    m->id = ++id;
    m->type = t;
    m->src = s;
    m->dest = d;
    m->addr = a;
    m->size_flits = f;
    return m;
  };

  std::printf("Phase 1: GetS request 0 -> 3 walks the 4-stage pipeline of\n"
              "every router (watch VA/SA appear and circuit entries grow):\n\n");
  auto req = make(MsgType::GetS, 0, 3, 0x1000, 1);
  net.send(req, clock);
  while (delivered < 1 && clock < 60) {
    net.tick(clock);
    snapshot(net, clock, "request");
    ++clock;
  }

  std::printf("\nPhase 2: the 5-flit data reply rides the circuit — no VA,\n"
              "no SA, one cycle per router; entries vanish behind its tail:\n\n");
  auto rep = make(MsgType::L2Reply, 3, 0, 0x1000, 5);
  net.send(rep, clock);
  while (delivered < 2 && clock < 120) {
    net.tick(clock);
    snapshot(net, clock, "reply");
    ++clock;
  }

  std::printf("\nTotal: request %llu cycles, circuit reply %llu cycles "
              "(same path, 5 flits vs 1).\n",
              static_cast<unsigned long long>(req->delivered - req->injected),
              static_cast<unsigned long long>(rep->delivered -
                                              rep->injected));
  return 0;
}
