// Design-space exploration: sweep the slack of the timed variants on one
// workload and watch the paper's §4.7/§5.2 trade-off emerge — small slack
// fails on timing, large slack fails on conflicts, slack+delay and
// postponement move the balance.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/presets.hpp"
#include "sim/report.hpp"

using namespace rc;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "fft";
  const int cores = argc > 2 ? std::atoi(argv[2]) : 64;
  std::printf("Timed-circuit design space on '%s', %d cores\n\n", app.c_str(),
              cores);

  RunResult base = run_one(cores, "Baseline", app, 1, 8'000, 25'000);

  struct Variant {
    std::string label;
    TimedMode mode;
    int slack;
  };
  std::vector<Variant> variants = {
      {"untimed Complete", TimedMode::None, 0},
      {"Timed (exact)", TimedMode::Exact, 0},
      {"Slack 1", TimedMode::Slack, 1},
      {"Slack 2", TimedMode::Slack, 2},
      {"Slack 4", TimedMode::Slack, 4},
      {"Slack 8", TimedMode::Slack, 8},
      {"SlackDelay 1", TimedMode::SlackDelay, 1},
      {"SlackDelay 2", TimedMode::SlackDelay, 2},
      {"Postponed 1", TimedMode::Postponed, 1},
      {"Postponed 2", TimedMode::Postponed, 2},
  };

  Table t({"variant", "circuit", "failed", "undone", "eliminated",
           "reply lat", "queue lat", "speedup"});
  for (const Variant& v : variants) {
    SystemConfig cfg = make_system_config(cores, "Complete_NoAck", app, 1);
    cfg.noc.circuit.timed = v.mode;
    cfg.noc.circuit.slack_per_hop = v.slack;
    cfg.warmup_cycles = 8'000;
    cfg.measure_cycles = 25'000;
    std::fprintf(stderr, "  [run] %s\n", v.label.c_str());
    RunResult r = run_config(cfg, v.label);
    ReplyBreakdown b = reply_breakdown(r);
    const Accumulator* lat = r.net.find_acc("lat_net_rep_circ");
    const Accumulator* q = r.net.find_acc("lat_q_rep_circ");
    t.add_row({v.label, Table::pct(b.used), Table::pct(b.failed),
               Table::pct(b.undone), Table::pct(b.eliminated),
               Table::num(lat ? lat->mean() : 0, 1),
               Table::num(q ? q->mean() : 0, 1),
               Table::num(r.ipc / base.ipc, 3)});
  }
  t.print("slack / delay / postponement sweep (all with NoAck)");

  std::printf(
      "\nReading the table:\n"
      "  * exact timing loses circuits to 'undone' the moment anything\n"
      "    (arbitration, busy lines) perturbs the optimistic estimate;\n"
      "  * slack wins them back until reservations get so long they\n"
      "    conflict ('failed' rises again);\n"
      "  * delay shifts slots instead of failing them;\n"
      "  * postponement builds the most circuits but taxes every reply's\n"
      "    queueing latency.\n");
  return 0;
}
